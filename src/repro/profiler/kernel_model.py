"""Analytical kernel execution-time model.

This replaces the per-layer profiling DeepPool performs on real A100s.  The
model is a roofline with three corrections that matter for strong scaling:

1. **Compute occupancy / wave quantization** — a kernel's math throughput is
   limited by how many thread blocks it can fill.  The device executes at
   most ``wave_size`` blocks concurrently; a kernel with fewer blocks than a
   wave can only use a proportional fraction of the SMs, and partially filled
   trailing waves waste the remainder of the last wave.  This is the effect
   that makes small per-GPU batches compute-inefficient (paper Figures 4, 5).
2. **Memory-bandwidth saturation** — HBM bandwidth saturates with far fewer
   blocks than the math pipelines do (a streaming kernel with a few dozen
   blocks already reaches peak bandwidth).  Weight-streaming layers (e.g.
   fully connected layers at tiny batch sizes) therefore stay roughly
   constant-time under strong scaling instead of slowing down — exactly the
   flat curves in Figure 5.
3. **Fixed kernel overhead** — every kernel pays a device-side fixed cost
   (scheduling, tail effects), so even trivially small kernels take a few
   microseconds.  This is the floor that makes many Inception-V3 layers
   launch-bound and is why CUDA graphs matter (paper Section 5).

The model is deliberately simple and fully deterministic: the planner only
needs relative layer costs with the right shape, not absolute accuracy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .gpu_spec import GPUSpec, A100_40GB

__all__ = ["KernelWorkload", "KernelCostModel"]

#: Output elements assigned to one thread block (typical tile of an
#: elementwise / GEMM-style kernel).
ELEMS_PER_BLOCK = 4096

#: Bytes of memory traffic one thread block keeps in flight; used to estimate
#: how many blocks a kernel needs before HBM bandwidth saturates.
BYTES_PER_BLOCK = 128 * 1024

#: Number of memory-active blocks needed to reach full HBM bandwidth.
MEM_SATURATION_BLOCKS = 32


@dataclass(frozen=True)
class KernelWorkload:
    """Device work of one logical kernel invocation.

    Attributes
    ----------
    flops:
        Floating point operations performed by the kernel.
    bytes_moved:
        Bytes read from plus written to device memory.
    parallel_elems:
        Independent output elements, used to estimate how many thread blocks
        the kernel can fill (its available compute parallelism).
    """

    flops: float
    bytes_moved: float
    parallel_elems: float

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_moved < 0 or self.parallel_elems < 0:
            raise ValueError("kernel workload quantities must be non-negative")

    def scaled(self, factor: float) -> "KernelWorkload":
        """Scale all work quantities (e.g. by a batch size)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return KernelWorkload(
            flops=self.flops * factor,
            bytes_moved=self.bytes_moved * factor,
            parallel_elems=self.parallel_elems * factor,
        )


class KernelCostModel:
    """Roofline + occupancy kernel-time estimator for one GPU."""

    def __init__(
        self,
        gpu: GPUSpec = A100_40GB,
        elems_per_block: int = ELEMS_PER_BLOCK,
        bytes_per_block: int = BYTES_PER_BLOCK,
        mem_saturation_blocks: int = MEM_SATURATION_BLOCKS,
    ) -> None:
        if elems_per_block <= 0 or bytes_per_block <= 0 or mem_saturation_blocks <= 0:
            raise ValueError("block-size parameters must be positive")
        self.gpu = gpu
        self.elems_per_block = elems_per_block
        self.bytes_per_block = bytes_per_block
        self.mem_saturation_blocks = mem_saturation_blocks

    # ------------------------------------------------------------------ model
    def num_blocks(self, workload: KernelWorkload) -> int:
        """Thread blocks the kernel decomposes into (at least one)."""
        return max(1, math.ceil(workload.parallel_elems / self.elems_per_block))

    def compute_occupancy(self, workload: KernelWorkload) -> float:
        """Fraction of the device's math throughput the kernel can use.

        A kernel with at least one full wave of blocks reaches 1.0 minus
        wave-quantization losses; below one wave, occupancy equals
        ``blocks / wave_size``.
        """
        blocks = self.num_blocks(workload)
        wave = self.gpu.wave_size
        full_waves, remainder = divmod(blocks, wave)
        if full_waves == 0:
            return blocks / wave
        total_waves = full_waves + (1 if remainder else 0)
        return blocks / (total_waves * wave)

    def memory_efficiency(self, workload: KernelWorkload) -> float:
        """Fraction of peak HBM bandwidth the kernel can sustain."""
        if workload.bytes_moved <= 0:
            return 1.0
        mem_blocks = max(1, math.ceil(workload.bytes_moved / self.bytes_per_block))
        return min(1.0, mem_blocks / self.mem_saturation_blocks)

    def ideal_time(self, workload: KernelWorkload) -> float:
        """Roofline execution time assuming full device utilization."""
        compute = workload.flops / self.gpu.peak_flops
        memory = workload.bytes_moved / self.gpu.memory_bandwidth
        return max(compute, memory)

    def kernel_time(self, workload: KernelWorkload, num_kernels: int = 1) -> float:
        """Device-side execution time of the workload, in seconds.

        ``num_kernels`` models the workload being issued as several kernels
        back to back (e.g. separate data-gradient and weight-gradient kernels
        in a layer's backward pass): the roofline work is unchanged but each
        kernel pays the fixed overhead, and occupancy is evaluated on the
        per-kernel slice of the work.
        """
        if num_kernels <= 0:
            raise ValueError("num_kernels must be positive")
        slice_ = workload.scaled(1.0 / num_kernels)
        compute_occ = max(self.compute_occupancy(slice_), 1e-12)
        mem_eff = max(self.memory_efficiency(slice_), 1e-12)
        compute_time = workload.flops / (self.gpu.peak_flops * compute_occ)
        memory_time = workload.bytes_moved / (self.gpu.memory_bandwidth * mem_eff)
        return num_kernels * self.gpu.kernel_fixed_overhead + max(compute_time, memory_time)

    def achieved_utilization(self, workload: KernelWorkload, num_kernels: int = 1) -> float:
        """Fraction of roofline-achievable throughput actually delivered.

        Defined as ideal time over achieved time, in (0, 1].  This is the
        per-kernel quantity aggregated into the device-utilization CDF
        (Figure 4).
        """
        t = self.kernel_time(workload, num_kernels)
        if t <= 0:
            return 1.0
        ideal = self.ideal_time(workload)
        if ideal <= 0:
            return 0.0
        return min(1.0, ideal / t)

    def launch_overhead(self, use_cuda_graphs: bool) -> float:
        """Host-side cost of launching one kernel."""
        if use_cuda_graphs:
            return self.gpu.graph_launch_overhead
        return self.gpu.kernel_launch_overhead
