"""Per-layer compute-time profiles: the planner's ``comp(i, g)`` input.

DeepPool's planner "initially profiles each layer with different batch sizes"
(paper Section 3.2) and consumes, for every layer ``i`` and GPU count ``g``,
the sum of forward and backward compute time at the per-GPU batch size implied
by ``g``.  This module produces those profiles from the static model graph and
the analytical kernel model, replacing measurement on real hardware.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cache import ArtifactCache, fingerprint, profiler_fingerprint
from ..models.graph import LayerSpec, ModelGraph
from ..obs.metrics import global_registry
from .gpu_spec import GPUSpec, A100_40GB
from .kernel_model import KernelCostModel, KernelWorkload

__all__ = [
    "LayerTiming",
    "LayerProfiler",
    "ModelProfile",
    "ProfilerCacheStats",
    "per_gpu_batch",
]

#: Bytes per scalar for activations and weights under mixed precision.
AMP_DTYPE_BYTES = 2

#: Bytes per parameter held in GPU memory during training: FP16 weight +
#: FP16 gradient + FP32 master weight + two FP32 Adam moments.
TRAINING_BYTES_PER_PARAM = 2 + 2 + 4 + 4 + 4

#: Kernel counts per layer: (forward kernels, backward kernels).  Weighted
#: layers run separate data-gradient and weight-gradient kernels backward.
_KERNELS_PER_OP: Dict[str, Tuple[int, int]] = {
    "input": (0, 0),
    "conv2d": (1, 2),
    "dense": (1, 2),
    "batchnorm": (1, 1),
    "relu": (1, 1),
    "dropout": (1, 1),
    "softmax": (1, 1),
    "maxpool": (1, 1),
    "avgpool": (1, 1),
    "add": (1, 1),
    "concat": (1, 1),
    "flatten": (0, 0),
}


def per_gpu_batch(global_batch: int, num_gpus: int) -> int:
    """Samples processed by the busiest GPU when a batch is split evenly.

    The iteration time of a data-parallel stage is set by the GPU holding
    ``ceil(global_batch / num_gpus)`` samples.
    """
    if global_batch <= 0:
        raise ValueError("global_batch must be positive")
    if num_gpus <= 0:
        raise ValueError("num_gpus must be positive")
    return math.ceil(global_batch / num_gpus)


@dataclass(frozen=True)
class LayerTiming:
    """Compute-time breakdown for one layer at one per-GPU batch size.

    All times are seconds for a single training iteration on one GPU.
    """

    layer_name: str
    op: str
    batch: int
    forward_time: float
    backward_time: float
    forward_kernels: int
    backward_kernels: int
    host_launch_time: float
    utilization: float

    @property
    def total_time(self) -> float:
        """Forward + backward device time, bounded below by host launch time.

        When kernels are shorter than the time the host needs to launch them,
        the layer becomes host-bound (the regime CUDA graphs address).
        """
        return max(self.forward_time + self.backward_time, self.host_launch_time)

    @property
    def device_time(self) -> float:
        """Pure device execution time (forward + backward)."""
        return self.forward_time + self.backward_time

    @property
    def num_kernels(self) -> int:
        return self.forward_kernels + self.backward_kernels


class ProfilerCacheStats:
    """Hit/miss counters of the profiler's layer-timing memo table.

    ``queries`` (hits + misses) only depends on the caller's query pattern,
    not on whether caching is enabled, which makes it a deterministic op
    count for the benchmark harness.

    Backed by :mod:`repro.obs.metrics` scoped counters: each instance keeps
    its own counts while also feeding the process-wide ``profiler.hits`` /
    ``profiler.misses`` aggregates.
    """

    __slots__ = ("_hits", "_misses")

    def __init__(self) -> None:
        registry = global_registry()
        self._hits = registry.scoped_counter("profiler.hits")
        self._misses = registry.scoped_counter("profiler.misses")

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def queries(self) -> int:
        return self.hits + self.misses

    def record_hit(self) -> None:
        self._hits.add(1)

    def record_miss(self) -> None:
        self._misses.add(1)

    def reset(self) -> None:
        self._hits.reset()
        self._misses.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProfilerCacheStats(hits={self.hits}, misses={self.misses})"


class LayerProfiler:
    """Computes per-layer timings — the analytical stand-in for profiling.

    Timings are memoized by ``(layer spec, batch)``: one profiler instance
    shared across many planner searches (the scheduler's situation, and the
    planner grid benchmark's) pays for each unique layer/batch combination
    once.  :class:`LayerSpec` is a frozen value type, so two structurally
    identical layers share a cache entry even across graph rebuilds.

    Parameters
    ----------
    gpu:
        Device specification to model.
    use_cuda_graphs:
        Whether host launch costs are amortized by CUDA graphs (the paper
        enables graphs for all jobs; the Figure 11 ablation turns it off).
    dtype_bytes:
        Bytes per activation/weight scalar (2 under AMP).
    enable_cache:
        Memoize ``layer_timing`` results.  Disabling restores the pre-cache
        behavior; the benchmark suite uses this to measure the speedup.
    persistent_cache:
        Optional :class:`~repro.cache.ArtifactCache`.  When set, timings
        missing from the in-memory memo are looked up on disk (keyed by the
        profiler fingerprint, the full layer spec and the batch size) before
        being recomputed, and computed timings are persisted — so planner
        grids, sweep workers and CI runs across *processes* share one set of
        profile derivations.
    """

    def __init__(
        self,
        gpu: GPUSpec = A100_40GB,
        use_cuda_graphs: bool = True,
        dtype_bytes: int = AMP_DTYPE_BYTES,
        enable_cache: bool = True,
        persistent_cache: Optional[ArtifactCache] = None,
    ) -> None:
        self.gpu = gpu
        self.use_cuda_graphs = use_cuda_graphs
        self.dtype_bytes = dtype_bytes
        self.kernel_model = KernelCostModel(gpu)
        self.enable_cache = enable_cache
        self.persistent_cache = persistent_cache
        self.cache_stats = ProfilerCacheStats()
        self._timing_cache: Dict[Tuple[LayerSpec, int], LayerTiming] = {}
        self._fingerprint: Optional[str] = None

    def fingerprint(self) -> str:
        """Content fingerprint of everything folded into a layer timing."""
        if self._fingerprint is None:
            self._fingerprint = profiler_fingerprint(self)
        return self._fingerprint

    def clear_cache(self) -> None:
        """Drop memoized timings (in-memory only; disk entries remain valid).

        The hit/miss counters keep accumulating (they describe the query
        history, not the cache contents); call ``cache_stats.reset()`` to
        zero them explicitly.
        """
        self._timing_cache.clear()

    # ----------------------------------------------------------- single layer
    def _forward_workload(self, spec: LayerSpec, batch: int) -> KernelWorkload:
        act_bytes = (spec.input_elems_per_sample + spec.output_elems_per_sample) * batch
        weight_bytes = spec.params
        return KernelWorkload(
            flops=spec.flops_per_sample * batch,
            bytes_moved=(act_bytes + weight_bytes) * self.dtype_bytes,
            parallel_elems=max(spec.output_elems_per_sample, 1) * batch,
        )

    def _backward_workload(self, spec: LayerSpec, batch: int) -> KernelWorkload:
        # Backward reads the saved activations and the incoming gradient and
        # writes gradients for inputs (and weights); roughly twice the
        # forward traffic for weighted layers.
        act_bytes = (2 * spec.input_elems_per_sample + spec.output_elems_per_sample) * batch
        weight_bytes = 2 * spec.params
        return KernelWorkload(
            flops=spec.flops_per_sample * spec.bwd_flops_multiplier * batch,
            bytes_moved=(act_bytes + weight_bytes) * self.dtype_bytes,
            parallel_elems=max(spec.input_elems_per_sample, 1) * batch,
        )

    def layer_timing(self, spec: LayerSpec, batch: int) -> LayerTiming:
        """Forward+backward timing of one layer at a per-GPU batch size."""
        if batch <= 0:
            raise ValueError("batch must be positive")
        if not self.enable_cache:
            self.cache_stats.record_miss()
            return self._compute_layer_timing(spec, batch)
        key = (spec, batch)
        cached = self._timing_cache.get(key)
        if cached is not None:
            self.cache_stats.record_hit()
            return cached
        self.cache_stats.record_miss()
        timing = None
        if self.persistent_cache is not None:
            digest = fingerprint(
                "layer-timing", self.fingerprint(), asdict(spec), batch
            )
            payload = self.persistent_cache.get("layer_timing", digest)
            if payload is not None:
                try:
                    timing = LayerTiming(**payload)
                except TypeError:  # foreign payload shape: recompute
                    timing = None
            if timing is None:
                timing = self._compute_layer_timing(spec, batch)
                self.persistent_cache.put("layer_timing", digest, asdict(timing))
        if timing is None:
            timing = self._compute_layer_timing(spec, batch)
        self._timing_cache[key] = timing
        return timing

    def _compute_layer_timing(self, spec: LayerSpec, batch: int) -> LayerTiming:
        fwd_kernels, bwd_kernels = _KERNELS_PER_OP.get(spec.op, (1, 1))
        if fwd_kernels == 0 and bwd_kernels == 0:
            return LayerTiming(
                layer_name=spec.name,
                op=spec.op,
                batch=batch,
                forward_time=0.0,
                backward_time=0.0,
                forward_kernels=0,
                backward_kernels=0,
                host_launch_time=0.0,
                utilization=1.0,
            )
        fwd = self._forward_workload(spec, batch)
        bwd = self._backward_workload(spec, batch)
        fwd_time = self.kernel_model.kernel_time(fwd, num_kernels=fwd_kernels)
        bwd_time = (
            self.kernel_model.kernel_time(bwd, num_kernels=bwd_kernels)
            if spec.bwd_flops_multiplier > 0
            else 0.0
        )
        launch = self.kernel_model.launch_overhead(self.use_cuda_graphs)
        host_time = launch * (fwd_kernels + (bwd_kernels if spec.bwd_flops_multiplier > 0 else 0))
        utilization = self.kernel_model.achieved_utilization(fwd, num_kernels=fwd_kernels)
        return LayerTiming(
            layer_name=spec.name,
            op=spec.op,
            batch=batch,
            forward_time=fwd_time,
            backward_time=bwd_time,
            forward_kernels=fwd_kernels,
            backward_kernels=bwd_kernels if spec.bwd_flops_multiplier > 0 else 0,
            host_launch_time=host_time,
            utilization=utilization,
        )

    def comp(self, spec: LayerSpec, global_batch: int, num_gpus: int) -> float:
        """``comp(i, g)``: fwd+bwd time of a layer scaled to ``num_gpus`` GPUs."""
        return self.layer_timing(spec, per_gpu_batch(global_batch, num_gpus)).total_time

    def forward_occupancy(self, spec: LayerSpec, batch: int) -> float:
        """SM occupancy of the layer's forward kernel at a per-GPU batch size.

        Used by the GPU multiplexing simulator to decide how much of the
        device a kernel leaves free for a collocated task.
        """
        if batch <= 0:
            raise ValueError("batch must be positive")
        workload = self._forward_workload(spec, batch)
        return self.kernel_model.compute_occupancy(workload)

    # ------------------------------------------------------------ whole model
    def profile_model(
        self, graph: ModelGraph, batches: Sequence[int]
    ) -> "ModelProfile":
        """Profile every layer at every per-GPU batch size in ``batches``."""
        unique_batches = sorted({int(b) for b in batches})
        if not unique_batches:
            raise ValueError("need at least one batch size to profile")
        timings: Dict[Tuple[int, int], LayerTiming] = {}
        for lid in graph.layer_ids():
            spec = graph.spec(lid)
            for b in unique_batches:
                timings[(lid, b)] = self.layer_timing(spec, b)
        return ModelProfile(
            graph=graph,
            gpu=self.gpu,
            batches=unique_batches,
            timings=timings,
            use_cuda_graphs=self.use_cuda_graphs,
        )

    def iteration_compute_time(self, graph: ModelGraph, batch: int) -> float:
        """Sum of all layers' compute time at one per-GPU batch size."""
        return sum(
            self.layer_timing(graph.spec(lid), batch).total_time
            for lid in graph.layer_ids()
        )

    def memory_footprint(self, graph: ModelGraph, batch: int) -> float:
        """Approximate training memory footprint in bytes.

        Parameters, gradients and optimizer state, plus activations saved for
        the backward pass at the given per-GPU batch size.  Strong scaling
        shrinks the activation term, which is what frees room for a collocated
        background job (paper Section 3.1).
        """
        param_bytes = graph.total_params() * TRAINING_BYTES_PER_PARAM
        act_elems = sum(
            spec.output_elems_per_sample for spec in graph.specs()
        )
        act_bytes = act_elems * batch * self.dtype_bytes
        return float(param_bytes + act_bytes)


@dataclass
class ModelProfile:
    """A table of layer timings at several per-GPU batch sizes.

    This is the artifact DeepPool's profiler hands to the planner: for any
    layer and GPU count, the planner looks up (or derives) the compute time.
    """

    graph: ModelGraph
    gpu: GPUSpec
    batches: List[int]
    timings: Dict[Tuple[int, int], LayerTiming]
    use_cuda_graphs: bool

    def timing(self, layer_id: int, batch: int) -> LayerTiming:
        """Timing for one layer at one profiled per-GPU batch size."""
        key = (layer_id, batch)
        if key not in self.timings:
            raise KeyError(
                f"layer {layer_id} was not profiled at batch {batch}; "
                f"profiled batches: {self.batches}"
            )
        return self.timings[key]

    def layer_time(self, layer_id: int, batch: int) -> float:
        return self.timing(layer_id, batch).total_time

    def iteration_time(self, batch: int) -> float:
        """Total compute time of one iteration at a per-GPU batch size."""
        return sum(
            self.timings[(lid, batch)].total_time for lid in self.graph.layer_ids()
        )

    def utilization_samples(self, batch: int) -> List[Tuple[float, float]]:
        """(time_weight, utilization) pairs across layers at one batch size.

        Used to build the time-weighted device-utilization CDF of Figure 4.
        """
        out: List[Tuple[float, float]] = []
        for lid in self.graph.layer_ids():
            t = self.timings[(lid, batch)]
            if t.num_kernels == 0:
                continue
            out.append((t.total_time, t.utilization))
        return out
