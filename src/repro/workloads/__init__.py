"""Workload definitions: synthetic kernel grids and Table 1 characteristics."""

from .synthetic import SyntheticKernelSpec, default_kernel_grid
from .table1 import WorkloadCharacteristics, table1_characteristics

__all__ = [
    "SyntheticKernelSpec",
    "default_kernel_grid",
    "WorkloadCharacteristics",
    "table1_characteristics",
]
