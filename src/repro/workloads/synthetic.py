"""Synthetic kernel grid for the pairwise-collocation microbenchmark (Figure 12).

The paper examines "the pairwise collocation of several synthetic kernels
with varied compute intensities and execution latencies".  We reproduce the
grid as (execution latency) x (compute intensity), where compute intensity
maps to the SM occupancy the kernel requests: a high-intensity kernel wants
the whole device, a low-intensity kernel leaves most SMs free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["SyntheticKernelSpec", "default_kernel_grid"]


@dataclass(frozen=True)
class SyntheticKernelSpec:
    """One synthetic kernel type of the Figure 12 grid."""

    label: str
    duration: float
    occupancy: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not (0.0 < self.occupancy <= 1.0):
            raise ValueError("occupancy must be in (0, 1]")

    def as_tuple(self) -> Tuple[str, float, float]:
        return (self.label, self.duration, self.occupancy)


#: Execution latencies spanning the range of real DNN kernels (a tiny
#: elementwise op up to a large convolution / NCCL collective).
DEFAULT_DURATIONS: Sequence[Tuple[str, float]] = (
    ("10us", 10e-6),
    ("100us", 100e-6),
    ("1ms", 1e-3),
    ("10ms", 10e-3),
)

#: Compute intensities: how much of the device the kernel can fill.
DEFAULT_INTENSITIES: Sequence[Tuple[str, float]] = (
    ("low", 0.25),
    ("mid", 0.5),
    ("high", 1.0),
)


def default_kernel_grid(
    durations: Sequence[Tuple[str, float]] = DEFAULT_DURATIONS,
    intensities: Sequence[Tuple[str, float]] = DEFAULT_INTENSITIES,
) -> List[SyntheticKernelSpec]:
    """The full latency x intensity grid of synthetic kernel types."""
    grid = []
    for dur_label, duration in durations:
        for int_label, occupancy in intensities:
            grid.append(
                SyntheticKernelSpec(
                    label=f"{dur_label}/{int_label}",
                    duration=duration,
                    occupancy=occupancy,
                )
            )
    return grid
