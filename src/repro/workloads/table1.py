"""Table 1: workload characteristics of the evaluation models.

The paper summarizes each evaluation model by its parameter count, number of
layers, input size, and dominant structure.  We regenerate the table from the
model zoo so that any change to the model definitions is reflected here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..models.registry import TABLE1_MODELS, build_model, model_entry

__all__ = ["WorkloadCharacteristics", "table1_characteristics"]


@dataclass(frozen=True)
class WorkloadCharacteristics:
    """One row of Table 1."""

    model: str
    params_millions: float
    weight_layers: int
    operator_layers: int
    input_size: str
    structure: str
    gflops_per_sample: float


def table1_characteristics(
    models: Sequence[str] = tuple(TABLE1_MODELS),
) -> List[WorkloadCharacteristics]:
    """Compute Table 1's rows from the model zoo."""
    rows = []
    for name in models:
        entry = model_entry(name)
        graph = build_model(name)
        c, h, w = entry.input_shape
        rows.append(
            WorkloadCharacteristics(
                model=name,
                params_millions=graph.total_params() / 1e6,
                weight_layers=graph.num_weight_layers(),
                operator_layers=graph.num_operator_layers(),
                input_size=f"{c} x {h} x {w}",
                structure=entry.structure,
                gflops_per_sample=graph.total_flops_per_sample() / 1e9,
            )
        )
    return rows
