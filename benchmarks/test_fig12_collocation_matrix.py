"""Figure 12: pairwise collocation of synthetic kernels under stream priorities.

Reproduces the microbenchmark that motivates reducing the background batch
size: stream priorities protect high-priority kernels in most pairings, but a
non-preemptive scheduler cannot protect *short* high-priority kernels from
*long*, compute-hungry low-priority kernels.
"""

from repro.analysis import figure12_collocation_matrix, format_matrix


def run_matrix():
    return figure12_collocation_matrix(sim_time=0.05)


def test_fig12_collocation_matrix(benchmark):
    matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    row_labels = sorted({hp for hp, _ in matrix})
    col_labels = sorted({lp for _, lp in matrix})
    print()
    print(
        format_matrix(
            row_labels,
            col_labels,
            matrix,
            precision=2,
            title="Figure 12: high-priority relative throughput (rows=HP, cols=LP)",
        )
    )

    # Short, compute-hungry high-priority kernels collapse when collocated
    # with long high-intensity low-priority kernels.
    assert matrix[("10us/high", "10ms/high")] < 0.3
    # Long high-priority kernels are essentially unaffected by short
    # low-priority kernels.
    assert matrix[("10ms/high", "10us/low")] > 0.85
    # QoS degrades monotonically (within noise) as the low-priority kernel
    # gets longer, for short high-intensity high-priority kernels.
    degradation = [
        matrix[("10us/high", f"{d}/high")] for d in ("10us", "100us", "1ms", "10ms")
    ]
    assert all(b <= a + 0.05 for a, b in zip(degradation, degradation[1:]))
    # Low-intensity high-priority kernels are far less vulnerable: they fit
    # next to the low-priority kernel instead of waiting for it.
    assert matrix[("10us/low", "10ms/high")] > matrix[("10us/high", "10ms/high")] + 0.2
