"""Figure 5: heterogeneous per-layer scalability of VGG-16.

Strong scaling one iteration from 128 samples to 2 samples per GPU speeds up
some layers almost linearly (the big early convolutions) while other layers
(the fully connected classifier) barely improve — the unevenness burst
parallelism exploits.
"""

from repro.analysis import figure5_layer_scalability, format_table


def test_fig5_layer_scalability(benchmark):
    rows = benchmark(figure5_layer_scalability)
    print()
    print(
        format_table(
            ["layer", "speedup (128 -> 2 samples)"],
            rows,
            precision=1,
            title="Figure 5: per-layer strong-scaling speedup, VGG-16",
        )
    )

    speedups = dict(rows)
    conv_speedups = [s for name, s in rows if ".conv" in name]
    fc_speedups = [s for name, s in rows if ".fc" in name]

    # Some layers scale close to linearly (the paper shows up to ~60x).
    assert max(conv_speedups) > 30
    # The fully connected layers barely benefit at all.
    assert max(fc_speedups) < 3
    # Scalability is highly heterogeneous: at least a 10x spread across layers.
    assert max(speedups.values()) / min(speedups.values()) > 10
    # Early wide convolutions scale better than the last small convolutions.
    assert speedups["features.conv2"] > speedups["features.conv13"]
