"""Figure 10: trade-off between cluster throughput and foreground speedup.

Sweeps DeepPool's operating points (amplification limit x background batch
size) and compares them with static cluster partitioning.  The paper's claim:
for the same cluster throughput, BP+Col reaches higher foreground speedups
than any static partition (11-38% higher depending on the workload).
"""

from repro.analysis import figure10_tradeoff, render_tradeoff
from repro.cluster import pareto_frontier


def run_figure10():
    return figure10_tradeoff(model_name="vgg16")


def test_fig10_tradeoff(benchmark):
    points = benchmark.pedantic(run_figure10, rounds=1, iterations=1)
    print()
    print(render_tradeoff(points))

    bp_col = points["bp_col"]
    partition = points["partition"]

    # The full-cluster partition (8+0) gives the best partition speedup but no
    # background throughput; partitions with fewer FG GPUs trade speedup for
    # throughput.
    speedups = {p.label: p.fg_speedup for p in partition}
    assert speedups["Partition 8+0"] > speedups["Partition 2+6"]

    # For every partition that actually shares the cluster (at least one GPU
    # reserved for background work — the regime Figure 10 is about), some
    # BP+Col operating point achieves at least the same cluster throughput
    # with a higher foreground speedup.
    frontier = pareto_frontier(bp_col)
    shared_partitions = [
        p for p in partition if p.label != "Partition 8+0" and p.fg_speedup > 1.0
    ]
    assert shared_partitions
    for part in shared_partitions:
        competitive = [
            p for p in frontier if p.cluster_throughput >= part.cluster_throughput * 0.999
        ]
        if not competitive:
            continue
        best = max(p.fg_speedup for p in competitive)
        assert best >= part.fg_speedup * 0.999, (
            f"BP+Col should match or beat {part.label} "
            f"(partition speedup {part.fg_speedup:.2f}, best BP+Col {best:.2f})"
        )

    # And for at least one partition configuration, the advantage is large
    # (the paper reports 11-38% higher foreground speedup at equal throughput).
    advantages = []
    for part in shared_partitions:
        competitive = [
            p for p in frontier if p.cluster_throughput >= part.cluster_throughput * 0.999
        ]
        if competitive and part.fg_speedup > 0:
            advantages.append(max(p.fg_speedup for p in competitive) / part.fg_speedup)
    assert advantages and max(advantages) > 1.1
