"""Figure 11: contribution of each multiplexing mechanism (VGG-16, one GPU).

Adds the mechanisms cumulatively — CUDA graphs, naive collocation, stream
priorities, launch pacing, the slowdown feedback loop, and background
batch-size reduction — and checks the paper's qualitative findings: naive
collocation destroys foreground QoS, and the protection mechanisms together
restore it while keeping useful background throughput.
"""

from repro.analysis import figure11_mechanism_ablation, format_table


def run_ablation():
    return figure11_mechanism_ablation(sim_time=0.2)


def test_fig11_mechanism_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["stage", "FG samples/s", "BG samples/s", "FG QoS"],
            [(r.label, r.fg_throughput, r.bg_throughput, r.fg_qos) for r in results],
            precision=2,
            title="Figure 11: cumulative multiplexing mechanisms (VGG-16)",
        )
    )

    by_label = {r.label: r for r in results}
    baseline = by_label["VGG BP"]
    naive = by_label["+ Naive Collocation"]
    final = by_label["+ Reducing BE Batch Size"]

    # The foreground-only stages run at full QoS and zero background work.
    assert baseline.bg_throughput == 0.0
    assert baseline.fg_qos > 0.99

    # Naive collocation dramatically reduces foreground throughput.
    assert naive.fg_qos < 0.5

    # Each protection mechanism (priorities, pacing, feedback, smaller BE
    # batch) recovers foreground QoS monotonically.
    protected = results[3:]
    qos_series = [r.fg_qos for r in protected]
    assert all(b >= a - 0.02 for a, b in zip(qos_series, qos_series[1:]))

    # With all mechanisms the foreground keeps most of its throughput while
    # the background still contributes meaningfully (total throughput above
    # the isolated foreground).
    assert final.fg_qos > 0.8
    assert final.bg_throughput > 0.0
    assert final.total_throughput > 1.2 * final.fg_isolated_throughput
