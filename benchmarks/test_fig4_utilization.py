"""Figure 4: GPU utilization CDF of ResNet-50 at different minibatch sizes.

The paper's point: with small minibatches most device time is spent at low
utilization, so even infinitely fast networks cannot make strong scaling
linear — which is the capacity DeepPool reclaims via collocation.
"""

from repro.analysis import figure4_utilization_cdf, format_table


def test_fig4_utilization_cdf(benchmark):
    cdfs = benchmark(figure4_utilization_cdf)
    rows = []
    for batch in sorted(cdfs):
        cdf = cdfs[batch]
        rows.append(
            (
                batch,
                cdf.mean(),
                cdf.fraction_below(0.25),
                cdf.fraction_below(0.5),
                cdf.fraction_below(0.75),
            )
        )
    print()
    print(
        format_table(
            ["minibatch", "mean util", "time < 25%", "time < 50%", "time < 75%"],
            rows,
            precision=2,
            title="Figure 4: ResNet-50 device utilization vs minibatch size",
        )
    )

    means = {batch: cdfs[batch].mean() for batch in cdfs}
    # Utilization increases monotonically with the minibatch size.
    ordered = [means[b] for b in sorted(means)]
    assert all(b <= a for b, a in zip(ordered, ordered[1:]))
    # Tiny batches leave the device mostly idle; big batches mostly busy.
    assert means[1] < 0.2
    assert means[256] > 0.8
    # At minibatch 1, the majority of device time is below 50% utilization.
    assert cdfs[1].fraction_below(0.5) > 0.5
