"""Figure 9: cluster training throughput of DP / BP / BP+Col / BG-only.

Checks the paper's headline claims on the simulated 8-GPU cluster:

* burst parallelism plus collocation raises total cluster throughput by
  roughly 1.2 - 2.3x over single-task data parallelism;
* the foreground job loses less than ~20% of its throughput to collocation;
* burst parallel scheduling alone does not hurt the foreground job for the
  chain-structured workloads (VGG-16).
"""

from repro.analysis import figure9_cluster_throughput, render_scenarios


def run_figure9():
    # Calibration uses the detailed single-GPU simulator; keep sim_time short
    # so the benchmark finishes quickly while staying deterministic.
    return figure9_cluster_throughput(calibrate=True, sim_time=0.1)


def test_fig9_cluster_throughput(benchmark):
    results = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    print()
    print(render_scenarios(results))
    print()
    for r in results:
        print(
            f"{r.model}: BP+Col total / DP total = {r.throughput_gain:.2f}x, "
            f"FG cost of collocation = {r.fg_degradation * 100:.0f}%"
        )

    by_model = {r.model: r for r in results}

    for r in results:
        # Collocation raises total cluster throughput substantially over DP
        # (the paper reports 1.2 - 2.3x across the three workloads).
        assert r.throughput_gain > 1.2
        # The foreground job keeps most of its throughput.
        assert r.fg_degradation < 0.25
        # The combined throughput cannot exceed BG-only plus the foreground
        # contribution (sanity bound on the collocation model).
        bg_only = r.scenario("BG Only").total_throughput
        col = r.scenario("BP + Col")
        assert col.bg_throughput <= bg_only * 1.001

    # Burst parallelism alone does not slow down VGG-16 versus DP.
    vgg = by_model["vgg16"]
    assert vgg.scenario("BP").fg_throughput >= 0.95 * vgg.scenario("DP").fg_throughput
