"""Figure 1: speedup of weak / strong / batch-optimal scaling for VGG-11.

Regenerates the speedup-vs-GPU-count curves and checks the paper's claims:
all strategies are near-linear up to ~4 GPUs, weak scaling saturates at
large scale, and strong / batch-optimal scaling keep improving (with
batch-optimal the best overall).
"""

from repro.analysis import figure1_scaling_strategies, format_table


def _rows(result):
    gpu_counts = result["gpu_counts"]
    curves = result["curves"]
    return [
        (
            g,
            curves["weak"][i].speedup,
            curves["strong"][i].speedup,
            curves["batch-optimal"][i].speedup,
        )
        for i, g in enumerate(gpu_counts)
    ]


def test_fig1_scaling_strategies(benchmark):
    result = benchmark(figure1_scaling_strategies)
    rows = _rows(result)
    print()
    print(
        format_table(
            ["GPUs", "weak", "strong", "batch-optimal"],
            rows,
            precision=1,
            title="Figure 1: speedup training VGG-11 to error 0.35 (1 Tbps per GPU)",
        )
    )

    curves = result["curves"]
    weak = [p.speedup for p in curves["weak"]]
    strong = [p.speedup for p in curves["strong"]]
    optimal = [p.speedup for p in curves["batch-optimal"]]

    # Near-linear speedup for every strategy up to 4 GPUs.
    for series in (weak, strong, optimal):
        assert series[0] == 1.0
        assert series[2] > 2.5  # 4 GPUs

    # Weak scaling saturates: going from 64 to 256 GPUs barely helps.
    assert weak[-1] < weak[-3] * 1.25
    # Strong scaling beats weak scaling at large scale on a fast network.
    assert strong[-1] > weak[-1]
    # Batch-optimal dominates both at every scale.
    assert all(o >= max(w, s) - 1e-9 for o, w, s in zip(optimal, weak, strong))
    # And keeps improving meaningfully beyond weak scaling's plateau.
    assert optimal[-1] > 2.5 * weak[-1]
