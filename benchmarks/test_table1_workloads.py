"""Table 1: workload characteristics of the evaluation models.

Regenerates the parameter counts, layer counts, and input sizes from the
model zoo and checks them against the paper's reported values.
"""

from repro.analysis import format_table, table1_workload_characteristics

#: Paper-reported values: (params in millions, input size).
PAPER_VALUES = {
    "vgg16": (132.0, "3 x 224 x 224"),
    "wide_resnet101_2": (127.0, "3 x 400 x 400"),
    "inception_v3": (24.0, "3 x 299 x 299"),
}


def test_table1_workload_characteristics(benchmark):
    rows = benchmark(table1_workload_characteristics)
    print()
    print(
        format_table(
            ["model", "params (M)", "weight layers", "operators", "input", "structure"],
            [
                (
                    r.model,
                    r.params_millions,
                    r.weight_layers,
                    r.operator_layers,
                    r.input_size,
                    r.structure,
                )
                for r in rows
            ],
            precision=1,
            title="Table 1: workload characteristics",
        )
    )

    by_name = {r.model: r for r in rows}
    for name, (paper_params, input_size) in PAPER_VALUES.items():
        row = by_name[name]
        # Parameter counts within 10% of the paper's values.
        assert abs(row.params_millions - paper_params) / paper_params < 0.10
        assert row.input_size == input_size
    # Inception-V3 is the many-small-layers workload.
    assert by_name["inception_v3"].weight_layers > by_name["vgg16"].weight_layers
    assert by_name["inception_v3"].params_millions < by_name["vgg16"].params_millions
