"""Ablation: CUDA-graph split size vs foreground QoS and background throughput.

DeepPool splits large CUDA graphs into groups of smaller graphs so that a
low-priority task's giant graph launch cannot head-of-line block the
foreground job (Section 5).  This ablation sweeps the split size for the
collocated background job and measures the foreground QoS impact.
"""

from repro.analysis import format_table
from repro.core.multiplexing import GPUCollocationRunner, MultiplexConfig
from repro.models import vgg16
from repro.network import get_fabric
from repro.profiler import LayerProfiler

SPLIT_SIZES = (4, 24, 96, None)  # None = one graph per iteration


def run_split_sweep():
    runner = GPUCollocationRunner(LayerProfiler(), get_fabric("nvswitch"), sim_time=0.15)
    graph = vgg16()
    results = {}
    for split in SPLIT_SIZES:
        config = MultiplexConfig(graph_split_size=split, bg_batch_size=8)
        results[str(split)] = runner.run_scenario(
            graph, 4, graph, config, sync_gpus=8, label=f"split={split}"
        )
    return results


def test_ablation_graph_split(benchmark):
    results = benchmark.pedantic(run_split_sweep, rounds=1, iterations=1)
    rows = [
        (label, r.fg_qos, r.fg_throughput, r.bg_throughput)
        for label, r in results.items()
    ]
    print()
    print(
        format_table(
            ["graph split size", "FG QoS", "FG samples/s", "BG samples/s"],
            rows,
            precision=2,
            title="Ablation: background CUDA-graph split size (VGG-16 fg batch 4)",
        )
    )

    # Every configuration keeps the system functional.
    for r in results.values():
        assert r.fg_throughput > 0
        assert r.bg_throughput > 0
    # Small split sizes protect the foreground at least as well as launching
    # the background's entire iteration as one giant graph.
    assert results["4"].fg_qos >= results["None"].fg_qos - 0.02
