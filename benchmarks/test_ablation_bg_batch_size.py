"""Ablation: background batch size vs foreground QoS (the Figure 11 tail).

DeepPool reduces the background job's batch size so its kernels stay short on
a non-preemptive device.  This ablation sweeps the background batch size and
measures the trade-off between background throughput and foreground QoS.
"""

from repro.analysis import format_table
from repro.core.multiplexing import GPUCollocationRunner, MultiplexConfig
from repro.models import vgg16
from repro.network import get_fabric
from repro.profiler import LayerProfiler

BG_BATCHES = (1, 2, 4, 8, 16, 32)


def run_bg_batch_sweep():
    runner = GPUCollocationRunner(LayerProfiler(), get_fabric("nvswitch"), sim_time=0.15)
    graph = vgg16()
    results = {}
    for bg_batch in BG_BATCHES:
        config = MultiplexConfig(bg_batch_size=bg_batch)
        results[bg_batch] = runner.run_scenario(
            graph, 4, graph, config, sync_gpus=8, label=f"bg_batch={bg_batch}"
        )
    return results


def test_ablation_bg_batch_size(benchmark):
    results = benchmark.pedantic(run_bg_batch_sweep, rounds=1, iterations=1)
    rows = [
        (batch, r.fg_qos, r.fg_throughput, r.bg_throughput)
        for batch, r in results.items()
    ]
    print()
    print(
        format_table(
            ["BG batch", "FG QoS", "FG samples/s", "BG samples/s"],
            rows,
            precision=2,
            title="Ablation: background batch size vs foreground QoS (VGG-16)",
        )
    )

    # Small background batches protect the foreground better than large ones.
    assert results[1].fg_qos > results[32].fg_qos
    # The smallest background batch keeps the foreground near its isolated
    # throughput (the paper's final Figure 11 configuration).
    assert results[1].fg_qos > 0.85
    # Larger background batches deliver more background throughput per unit
    # of foreground damage up to the point where interference dominates.
    assert results[8].bg_throughput > results[1].bg_throughput * 0.8
