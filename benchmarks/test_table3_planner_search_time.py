"""Table 3: wall-clock time of the burst-parallel plan search.

The paper's claim: thanks to restricting layer widths to powers of two, the
search completes within seconds even at 1024 GPUs, growing only modestly from
the 8-GPU search, and Inception-V3 (which needs the graph-reduction step) is
the slowest model to plan.
"""

from repro.analysis import format_table, table3_planner_search_time


def run_table3():
    return table3_planner_search_time()


def test_table3_planner_search_time(benchmark):
    times = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    rows = [
        (model, per_scale.get(8, float("nan")), per_scale.get(1024, float("nan")))
        for model, per_scale in times.items()
    ]
    print()
    print(
        format_table(
            ["model", "8 GPUs (s)", "1024 GPUs (s)"],
            rows,
            precision=3,
            title="Table 3: burst-parallel plan search time",
        )
    )

    for model, per_scale in times.items():
        # Search completes in seconds even at 1024 GPUs.
        assert per_scale[1024] < 30.0, f"{model} search too slow: {per_scale[1024]:.1f}s"
        # And the 8-GPU search is fast.
        assert per_scale[8] < 5.0
    # VGG-16 (a simple chain) is the fastest model to plan.
    assert times["vgg16"][1024] < times["inception_v3"][1024]
    assert times["vgg16"][8] < 0.5
