"""Figure 13: multi-tenant scheduling policies on a trace-driven cluster.

Runs a 32-GPU, 24-job synthetic trace (Poisson arrivals, ~1/3 background
jobs) through the three scheduling policies and checks the headline of the
cluster-manager story:

* the DeepPool-style collocation-aware policy (space-shared burst-parallel
  placements, background collocation, preemption, re-planning) beats the
  FIFO baseline on both mean job completion time and cluster utilization;
* shortest-remaining-GPU-seconds backfilling already beats FIFO on JCT, and
  collocation then recovers additional utilization on top of it;
* the whole simulation is deterministic: re-running the same seed yields
  bit-identical fleet metrics.
"""

from repro.analysis import figure13_policy_comparison, render_policy_comparison

NUM_GPUS = 32
NUM_JOBS = 24
SEED = 7


def run_figure13():
    return figure13_policy_comparison(
        num_gpus=NUM_GPUS, num_jobs=NUM_JOBS, seed=SEED
    )


def test_sched_policies(benchmark):
    results = benchmark.pedantic(run_figure13, rounds=1, iterations=1)
    print()
    print(render_policy_comparison(results))

    assert set(results) == {"fifo", "srgs", "collocation"}
    fifo = results["fifo"].metrics
    srgs = results["srgs"].metrics
    col = results["collocation"].metrics

    # Every job of the trace completes under every policy.
    for result in results.values():
        assert result.num_gpus == NUM_GPUS
        assert result.metrics.num_jobs == NUM_JOBS
        assert all(r.finish_time >= r.start_time >= r.arrival_time
                   for r in result.records)

    # The collocation-aware policy beats FIFO on both axes.
    assert col.mean_jct < fifo.mean_jct
    assert col.utilization > fifo.utilization
    # Backfilling alone already fixes FIFO's head-of-line blocking...
    assert srgs.mean_jct < fifo.mean_jct
    # ...and collocation recovers utilization on top of backfilling.
    assert col.utilization > srgs.utilization
    # The mechanisms the policy is named for actually fired.
    assert col.replans + col.preemptions > 0
    assert fifo.replans == fifo.preemptions == 0

    # Determinism: the same seed reproduces the exact fleet metrics.
    again = figure13_policy_comparison(
        num_gpus=NUM_GPUS, num_jobs=NUM_JOBS, seed=SEED
    )
    for policy, result in results.items():
        assert again[policy].metrics == result.metrics
