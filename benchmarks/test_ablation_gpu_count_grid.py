"""Ablation: powers-of-two layer widths vs an all-integers search grid.

The paper restricts the planner's candidate GPU counts to powers of two "to
limit the growth of the search space" (Section 7.4).  This ablation measures
what that optimization costs in plan quality (iteration time) and what it
buys in search time on an 8-GPU cluster.
"""

import time

from repro.analysis import format_table
from repro.core.planner import BurstParallelPlanner, PlannerConfig
from repro.models import build_model
from repro.network import get_fabric

GLOBAL_BATCH = 32
NUM_GPUS = 8
AMP_LIMIT = 2.0


def run_grid_comparison():
    fabric = get_fabric("nvswitch")
    graph = build_model("vgg16")
    results = {}
    for label, powers_only in (("powers-of-two", True), ("all-integers", False)):
        planner = BurstParallelPlanner(
            fabric,
            config=PlannerConfig(
                amplification_limit=AMP_LIMIT, powers_of_two_only=powers_only
            ),
        )
        start = time.perf_counter()
        plan = planner.plan(graph, GLOBAL_BATCH, NUM_GPUS)
        elapsed = time.perf_counter() - start
        results[label] = (plan, elapsed)
    return results


def test_ablation_gpu_count_grid(benchmark):
    results = benchmark.pedantic(run_grid_comparison, rounds=1, iterations=1)
    rows = [
        (label, plan.iteration_time * 1e3, plan.total_gpu_seconds() * 1e3, elapsed)
        for label, (plan, elapsed) in results.items()
    ]
    print()
    print(
        format_table(
            ["candidate grid", "iteration (ms)", "GPU-sec (ms)", "search time (s)"],
            rows,
            precision=3,
            title="Ablation: planner candidate GPU-count grid (VGG-16, 8 GPUs)",
        )
    )

    pow2_plan, pow2_time = results["powers-of-two"]
    full_plan, full_time = results["all-integers"]
    # The denser grid can only improve (or match) the plan's iteration time...
    assert full_plan.iteration_time <= pow2_plan.iteration_time * 1.001
    # ...but the improvement is marginal (the paper's justification)...
    assert full_plan.iteration_time > pow2_plan.iteration_time * 0.85
    # ...while the restricted grid searches at least as fast.
    assert pow2_time <= full_time * 1.05
