"""Figure 2: per-GPU batch size chosen by batch-optimal scaling.

The paper's observation: as the cluster grows, the time-to-accuracy-optimal
per-GPU batch size shrinks, i.e. large clusters are pushed into the
strong-scaling regime of small per-GPU batches.
"""

from repro.analysis import figure2_batch_optimal_per_gpu_batch, format_table


def test_fig2_batch_optimal_per_gpu_batch(benchmark):
    per_gpu = benchmark(figure2_batch_optimal_per_gpu_batch)
    rows = sorted(per_gpu.items())
    print()
    print(
        format_table(
            ["GPUs", "optimal per-GPU batch"],
            rows,
            precision=0,
            title="Figure 2: batch-optimal per-GPU batch size (NVSwitch, VGG-11)",
        )
    )

    small_scale = per_gpu[min(per_gpu)]
    large_scale = per_gpu[max(per_gpu)]
    # Large scale uses a much smaller per-GPU batch than small scale.
    assert large_scale <= small_scale / 4
    # The trend is (weakly) monotone decreasing across the sweep.
    batches = [b for _, b in rows]
    assert all(b2 <= b1 for b1, b2 in zip(batches, batches[1:]))
    # At 256 GPUs the optimal per-GPU batch is small (strong-scaling regime).
    assert large_scale <= 32
