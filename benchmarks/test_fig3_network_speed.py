"""Figure 3: speedup at 256 GPUs under different network speeds.

Checks the crossover the paper highlights: with a slow (10 Gbps) network,
weak scaling is preferable; with NVSwitch-class networks, strong and
batch-optimal scaling pull far ahead, so fast networks make strong scaling
attractive.
"""

from repro.analysis import figure3_network_speed_comparison, format_table


def test_fig3_network_speed_comparison(benchmark):
    result = benchmark(figure3_network_speed_comparison)
    rows = [
        (name, vals["weak"], vals["strong"], vals["batch-optimal"])
        for name, vals in result.items()
    ]
    print()
    print(
        format_table(
            ["network", "weak", "strong", "batch-optimal"],
            rows,
            precision=1,
            title="Figure 3: speedup at 256 GPUs, VGG-11 to error 0.35",
        )
    )

    slow = result["10gbps"]
    fast = result["nvswitch"]
    # On a slow network weak scaling beats strong scaling.
    assert slow["weak"] > slow["strong"]
    # On a fast network strong scaling beats weak scaling.
    assert fast["strong"] > fast["weak"]
    # Strong scaling benefits much more from the faster network than weak
    # scaling does (the reason faster networks favor strong scaling).
    assert fast["strong"] / slow["strong"] > 5 * (fast["weak"] / slow["weak"])
    # Batch-optimal is the best strategy on every network.
    for vals in result.values():
        assert vals["batch-optimal"] >= max(vals["weak"], vals["strong"]) - 1e-9
